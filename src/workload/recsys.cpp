#include "workload/recsys.h"

#include "common/assert.h"

namespace pipette {

RecsysWorkload::RecsysWorkload(const RecsysConfig& config)
    : config_(config), rng_(config.seed) {
  PIPETTE_ASSERT(config.tables > 0);
  PIPETTE_ASSERT(config.vector_size > 0);
  rows_per_table_ =
      config.total_bytes / config.tables / config.vector_size;
  PIPETTE_ASSERT_MSG(rows_per_table_ > 0, "tables too small for a row");
  const std::uint64_t file_size = static_cast<std::uint64_t>(config.tables) *
                                  rows_per_table_ * config.vector_size;
  files_.push_back({"embeddings.dat", file_size});
  // One popularity law shared by all tables, scattered so hot vectors are
  // spread over the whole file (each table sees the same skew but different
  // hot rows because the permutation mixes the table offset in).
  row_zipf_ = std::make_unique<ScatteredZipf>(rows_per_table_,
                                              config.zipf_alpha,
                                              /*permutation_seed=*/config.seed);
}

Request RecsysWorkload::next() {
  // One lookup: pick a sparse feature table uniformly, then a row by
  // (scattered) zipf popularity.
  const std::uint64_t table = rng_.next_below(config_.tables);
  const std::uint64_t row = row_zipf_->sample(rng_);
  // Per-table scattering: rotate the row by a table-dependent stride so the
  // hot set differs between tables.
  const std::uint64_t rotated =
      (row + table * (rows_per_table_ / (config_.tables + 1))) %
      rows_per_table_;
  const std::uint64_t offset =
      (table * rows_per_table_ + rotated) * config_.vector_size;
  return {0, offset, config_.vector_size, false};
}

}  // namespace pipette
