// Search-engine workload (extension): modelled on WiSER [He et al.,
// FAST'20], the flash-optimized search engine the paper's introduction
// cites as a fine-grained-read-dominated application. Queries fetch
// posting lists from an inverted index on the SSD: term popularity is
// zipfian (query logs), list length varies per term (log-uniform between
// min and max), and each term owns a fixed slot so offsets are O(1).
#pragma once

#include <memory>

#include "common/rng.h"
#include "common/zipf.h"
#include "workload/workload.h"

namespace pipette {

struct SearchConfig {
  std::uint64_t terms = 1u << 20;
  std::uint32_t slot_bytes = 512;     // region reserved per term
  std::uint32_t min_posting = 16;     // shortest posting list (bytes)
  double term_zipf = 0.9;             // query-log skew
  std::uint64_t seed = 42;
};

class SearchWorkload : public Workload {
 public:
  explicit SearchWorkload(const SearchConfig& config);

  const std::vector<FileSpec>& files() const override { return files_; }
  Request next() override;
  std::string name() const override { return "search-engine"; }

  /// Posting-list length of a term (deterministic; exposed for tests).
  std::uint32_t posting_bytes(std::uint64_t term) const;

 private:
  SearchConfig config_;
  std::vector<FileSpec> files_;
  Rng rng_;
  std::unique_ptr<ScatteredZipf> term_zipf_;
};

}  // namespace pipette
