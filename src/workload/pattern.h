// Pattern workloads for the readahead-prefetcher experiments: streams with
// structure the stride/cluster classifier can exploit, alongside the
// uniform-random synthetic mixes that must *not* trip it.
//
//  * StridedWorkload — fixed-size records visited in runs of constant
//    stride (an analytics scan touching one column of a row-major table):
//    `run_length` accesses at `base + k*stride`, then a jump to a fresh
//    random run start on the stride grid. Within a run every access is
//    predictable from the previous two.
//  * ClusteredHotWorkload — a zipf-popular set of small clusters (hot-key
//    neighbourhoods in a log-structured store). Each burst picks a cluster
//    (zipf) and reads `burst` records on the record grid inside it, so the
//    recency window is spatially dense even though individual offsets are
//    random.
#pragma once

#include <memory>

#include "common/rng.h"
#include "common/zipf.h"
#include "workload/workload.h"

namespace pipette {

struct StridedConfig {
  std::uint64_t file_size = 256ull * 1024 * 1024;
  std::uint32_t read_size = 128;
  std::uint64_t stride = 4096;      // byte distance between run accesses
  std::uint32_t run_length = 256;   // accesses per run
  std::uint64_t sub_offset = 512;   // fixed intra-slot shift (never aligned)
  std::uint64_t seed = 42;
};

class StridedWorkload : public Workload {
 public:
  explicit StridedWorkload(const StridedConfig& config);

  const std::vector<FileSpec>& files() const override { return files_; }
  Request next() override;
  std::string name() const override;

 private:
  StridedConfig config_;
  std::vector<FileSpec> files_;
  Rng rng_;
  std::uint64_t slots_;       // stride-grid positions a run may start at
  std::uint64_t run_base_ = 0;
  std::uint32_t run_pos_ = 0;
  bool in_run_ = false;
};

struct ClusteredConfig {
  std::uint64_t file_size = 256ull * 1024 * 1024;
  std::uint32_t read_size = 128;
  // Neighbourhood sizing: a cluster spans many 4 KiB pages and a burst
  // dwells long enough that the handful of accesses the classifier needs
  // to lock on (~5) are small against the burst — the regime where
  // readahead can matter at the tail, not just the median.
  std::uint64_t cluster_bytes = 64 * 1024;  // hot neighbourhood size
  std::uint32_t burst = 512;                // accesses per cluster visit
  double zipf_alpha = 0.8;                  // cluster popularity skew
  std::uint64_t seed = 42;
};

class ClusteredHotWorkload : public Workload {
 public:
  explicit ClusteredHotWorkload(const ClusteredConfig& config);

  const std::vector<FileSpec>& files() const override { return files_; }
  Request next() override;
  std::string name() const override;

 private:
  ClusteredConfig config_;
  std::vector<FileSpec> files_;
  Rng rng_;
  std::uint64_t clusters_;
  std::uint64_t items_per_cluster_;
  std::unique_ptr<ZipfGenerator> zipf_;
  std::uint64_t cluster_ = 0;  // current burst's cluster
  std::uint32_t burst_pos_ = 0;
  bool in_burst_ = false;
};

}  // namespace pipette
