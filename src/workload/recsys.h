// Recommendation-system workload: DLRM-style embedding lookups (paper §4.3).
//
// The model handles sparse input features by looking up fixed-size (128 B)
// embedding vectors from tables stored in a file on the SSD [Gupta et al.,
// Wan et al.]. Each inference request draws one lookup per sparse feature
// table; row popularity within a table is zipfian (Bandana reports highly
// skewed embedding reuse on production traces) with hot rows scattered
// across the table, not clustered. The paper's tables total 4.1 GB; the
// default here is a scaled-down table set with identical I/O behaviour
// (same vector size, same skew), sized to keep simulation turnaround
// reasonable — pass `total_bytes` to change it.
#pragma once

#include <memory>

#include "common/rng.h"
#include "common/zipf.h"
#include "workload/workload.h"

namespace pipette {

struct RecsysConfig {
  std::uint64_t total_bytes = 1024ull * 1024 * 1024;
  std::uint32_t vector_size = 128;
  std::uint32_t tables = 26;  // Criteo-like sparse feature count
  // Bandana [Eisenman et al.] measures production embedding reuse where a
  // hot core of vectors serves the vast majority of lookups; alpha = 1.1
  // reproduces that concentration. Hot vectors are scattered across the
  // tables (Feistel permutation), so the page cache must spend 4 KiB per
  // hot vector while the FGRC spends 128 B — the contrast behind Table 4.
  double zipf_alpha = 1.1;
  std::uint64_t seed = 42;
};

class RecsysWorkload : public Workload {
 public:
  explicit RecsysWorkload(const RecsysConfig& config);

  const std::vector<FileSpec>& files() const override { return files_; }
  Request next() override;
  std::string name() const override { return "recommender-system"; }

  std::uint64_t rows_per_table() const { return rows_per_table_; }

 private:
  RecsysConfig config_;
  std::vector<FileSpec> files_;
  Rng rng_;
  std::uint64_t rows_per_table_;
  std::unique_ptr<ScatteredZipf> row_zipf_;
};

}  // namespace pipette
