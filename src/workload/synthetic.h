// Synthetic workloads of the paper's Table 1: five mixes (A..E) of large
// (4096 B, page-aligned) and small (128 B) reads over one file, with file
// offsets drawn uniformly at random or from a zipfian distribution
// (alpha = 0.8).
//
// Zipfian offsets follow the paper's construction: rank r maps to slot r,
// so the popular head of the distribution is spatially clustered at the
// start of the file — this is what gives the traditional read path its
// spatial-locality advantage under zipf ("workloads with zipfian
// distribution preserve certain levels of spatial locality", §4.2).
#pragma once

#include <memory>

#include "common/rng.h"
#include "common/zipf.h"
#include "workload/workload.h"

namespace pipette {

enum class Distribution { kUniform, kZipf };

struct SyntheticConfig {
  std::uint64_t file_size = 256ull * 1024 * 1024;
  double small_ratio = 1.0;  // fraction of requests that are small
  std::uint32_t small_size = 128;
  std::uint32_t large_size = 4096;
  Distribution dist = Distribution::kUniform;
  double zipf_alpha = 0.8;
  std::uint64_t seed = 42;
  /// Fraction of requests that are writes (same size/offset population as
  /// the reads). Exactly 0.0 draws no extra randomness per request, so
  /// read-only streams are bit-identical to the pre-write-mix generator.
  double write_ratio = 0.0;
};

/// Table 1's named mixes: A=100/0 large/small ... E=0/100.
SyntheticConfig table1_workload(char which, Distribution dist,
                                std::uint64_t seed = 42);

class SyntheticWorkload : public Workload {
 public:
  explicit SyntheticWorkload(const SyntheticConfig& config);

  const std::vector<FileSpec>& files() const override { return files_; }
  Request next() override;
  std::string name() const override;

  const SyntheticConfig& config() const { return config_; }

 private:
  SyntheticConfig config_;
  std::vector<FileSpec> files_;
  Rng rng_;
  std::uint64_t small_slots_;
  std::uint64_t large_slots_;
  std::unique_ptr<ZipfGenerator> small_zipf_;
  std::unique_ptr<ZipfGenerator> large_zipf_;
};

/// The request generator behind the paper's Fig. 8 latency sweep: workload
/// E (pure fine-grained reads, uniform random) at a fixed request size.
/// Offsets are drawn uniformly over one record per 4 KiB page; each record
/// sits at a per-page pseudo-random, non-page-aligned position that is
/// stable across draws, so the access population (and thus cache reuse) is
/// identical for every request size — only the size varies, as in the
/// figure.
class SizeSweepWorkload : public Workload {
 public:
  SizeSweepWorkload(std::uint64_t file_size, std::uint32_t read_size,
                    std::uint64_t seed = 42);

  const std::vector<FileSpec>& files() const override { return files_; }
  Request next() override;
  std::string name() const override;

  /// The stable byte offset of slot `slot` (exposed for tests).
  std::uint64_t slot_offset(std::uint64_t slot) const;

 private:
  std::vector<FileSpec> files_;
  std::uint32_t read_size_;
  Rng rng_;
  std::uint64_t slots_;
  std::uint64_t seed_;
};

}  // namespace pipette
