// Social-graph workload modelled on LinkBench (Armstrong et al., SIGMOD'13),
// the benchmark the paper uses for its social-graph experiment ("we use the
// graph and requests based on LinkBench's default setting").
//
// Object store layout (two files):
//   nodes.dat — fixed 128 B slots; a node's payload averages ~88 B
//               (Fig. 1 cites 87.6 B average node size).
//   links.dat — per-node link segment holding the node's out-links; a link
//               record is 16 B (ids + type + timestamp), with the ~11.3 B
//               average edge payload folded in. GET_LINKS_LIST reads a
//               prefix of the segment (LinkBench lists average ~10 links).
//
// The operation mix follows LinkBench's default configuration; node/link
// popularity is zipfian with hot ids scattered over the id space, as in
// the Facebook trace LinkBench models.
#pragma once

#include <memory>

#include "common/rng.h"
#include "common/zipf.h"
#include "workload/workload.h"

namespace pipette {

struct LinkBenchConfig {
  std::uint64_t node_count = 1u << 20;
  std::uint32_t node_slot = 128;   // bytes reserved per node
  std::uint32_t node_payload = 88;  // bytes actually read/written
  std::uint32_t link_record = 16;
  std::uint32_t max_links_per_node = 64;  // segment capacity
  double mean_list_length = 10.0;
  // LinkBench's node/link access CDF on the Facebook trace is close to a
  // zipf with exponent ~0.9.
  double zipf_alpha = 0.9;
  std::uint64_t seed = 42;
  bool read_only = false;  // drop the write operations from the mix
};

/// LinkBench default operation mix (percent).
enum class GraphOp {
  kGetNode,
  kGetLink,
  kGetLinkList,
  kCountLinks,
  kUpdateNode,
  kAddLink,
  kUpdateLink,
  kDeleteLink,
};

class LinkBenchWorkload : public Workload {
 public:
  explicit LinkBenchWorkload(const LinkBenchConfig& config);

  const std::vector<FileSpec>& files() const override { return files_; }
  Request next() override;
  std::string name() const override { return "social-graph"; }

  /// Operation drawn for the most recent next() (for tests/metrics).
  GraphOp last_op() const { return last_op_; }

 private:
  GraphOp draw_op();
  std::uint64_t hot_node();

  LinkBenchConfig config_;
  std::vector<FileSpec> files_;
  Rng rng_;
  std::unique_ptr<ScatteredZipf> node_zipf_;
  GraphOp last_op_ = GraphOp::kGetNode;
};

}  // namespace pipette
