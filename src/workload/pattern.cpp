#include "workload/pattern.h"

#include <cstdio>

#include "common/assert.h"
#include "ssd/types.h"

namespace pipette {

StridedWorkload::StridedWorkload(const StridedConfig& config)
    : config_(config), rng_(config.seed) {
  PIPETTE_ASSERT(config.read_size > 0 && config.stride > 0);
  PIPETTE_ASSERT(config.run_length >= 1);
  PIPETTE_ASSERT(config.sub_offset + config.read_size <= config.stride);
  files_.push_back({"strided.dat", config.file_size});
  const std::uint64_t grid = config.file_size / config.stride;
  PIPETTE_ASSERT(grid >= config.run_length);
  // A run starting here always fits inside the file.
  slots_ = grid - config.run_length + 1;
}

Request StridedWorkload::next() {
  if (!in_run_) {
    run_base_ = rng_.next_below(slots_) * config_.stride;
    run_pos_ = 0;
    in_run_ = true;
  }
  const std::uint64_t offset =
      run_base_ + run_pos_ * config_.stride + config_.sub_offset;
  if (++run_pos_ >= config_.run_length) in_run_ = false;
  return {0, offset, config_.read_size, false};
}

std::string StridedWorkload::name() const {
  char buf[96];
  std::snprintf(buf, sizeof buf, "strided(%uB@%llu,run=%u)",
                config_.read_size,
                static_cast<unsigned long long>(config_.stride),
                config_.run_length);
  return buf;
}

ClusteredHotWorkload::ClusteredHotWorkload(const ClusteredConfig& config)
    : config_(config), rng_(config.seed) {
  PIPETTE_ASSERT(config.read_size > 0);
  PIPETTE_ASSERT(config.cluster_bytes >= config.read_size);
  PIPETTE_ASSERT(config.burst >= 1);
  files_.push_back({"clustered.dat", config.file_size});
  clusters_ = config.file_size / config.cluster_bytes;
  items_per_cluster_ = config.cluster_bytes / config.read_size;
  PIPETTE_ASSERT(clusters_ >= 1 && items_per_cluster_ >= 1);
  zipf_ = std::make_unique<ZipfGenerator>(clusters_, config.zipf_alpha);
}

Request ClusteredHotWorkload::next() {
  if (!in_burst_) {
    // Rank == cluster index: the hot set sits at the start of the file,
    // like the synthetic zipf mixes.
    cluster_ = zipf_->sample(rng_);
    burst_pos_ = 0;
    in_burst_ = true;
  }
  const std::uint64_t item = rng_.next_below(items_per_cluster_);
  const std::uint64_t offset =
      cluster_ * config_.cluster_bytes + item * config_.read_size;
  if (++burst_pos_ >= config_.burst) in_burst_ = false;
  return {0, offset, config_.read_size, false};
}

std::string ClusteredHotWorkload::name() const {
  char buf[96];
  std::snprintf(buf, sizeof buf, "clustered(%uB,%lluKiB,burst=%u)",
                config_.read_size,
                static_cast<unsigned long long>(config_.cluster_bytes / 1024),
                config_.burst);
  return buf;
}

}  // namespace pipette
