#include "workload/synthetic.h"

#include <cstdio>

#include "common/assert.h"
#include "ssd/types.h"

namespace pipette {

SyntheticConfig table1_workload(char which, Distribution dist,
                                std::uint64_t seed) {
  SyntheticConfig c;
  c.dist = dist;
  c.seed = seed;
  switch (which) {
    case 'A':
      c.small_ratio = 0.0;
      break;
    case 'B':
      c.small_ratio = 0.1;
      break;
    case 'C':
      c.small_ratio = 0.5;
      break;
    case 'D':
      c.small_ratio = 0.9;
      break;
    case 'E':
      c.small_ratio = 1.0;
      break;
    default:
      PIPETTE_ASSERT_MSG(false, "workload must be one of A..E");
  }
  return c;
}

SyntheticWorkload::SyntheticWorkload(const SyntheticConfig& config)
    : config_(config), rng_(config.seed) {
  PIPETTE_ASSERT(config.small_ratio >= 0.0 && config.small_ratio <= 1.0);
  PIPETTE_ASSERT(config.write_ratio >= 0.0 && config.write_ratio <= 1.0);
  PIPETTE_ASSERT(config.small_size > 0 && config.large_size > 0);
  files_.push_back({"synthetic.dat", config.file_size});
  small_slots_ = config.file_size / config.small_size;
  large_slots_ = config.file_size / config.large_size;
  PIPETTE_ASSERT(small_slots_ > 0 && large_slots_ > 0);
  if (config.dist == Distribution::kZipf) {
    small_zipf_ =
        std::make_unique<ZipfGenerator>(small_slots_, config.zipf_alpha);
    large_zipf_ =
        std::make_unique<ZipfGenerator>(large_slots_, config.zipf_alpha);
  }
}

Request SyntheticWorkload::next() {
  const bool small = rng_.next_bool(config_.small_ratio);
  const std::uint32_t size = small ? config_.small_size : config_.large_size;
  std::uint64_t slot;
  if (config_.dist == Distribution::kUniform) {
    slot = rng_.next_below(small ? small_slots_ : large_slots_);
  } else {
    // Rank == slot: the hot head is clustered at the start of the file.
    slot = small ? small_zipf_->sample(rng_) : large_zipf_->sample(rng_);
  }
  // The write draw comes last and is skipped entirely at ratio 0, keeping
  // read-only request streams byte-identical to the historical generator.
  const bool is_write =
      config_.write_ratio > 0.0 && rng_.next_bool(config_.write_ratio);
  return {0, slot * size, size, is_write};
}

std::string SyntheticWorkload::name() const {
  const char* dist =
      config_.dist == Distribution::kUniform ? "uniform" : "zipf";
  char buf[96];
  std::snprintf(buf, sizeof buf, "synthetic(small=%.0f%%,%s)",
                config_.small_ratio * 100.0, dist);
  return buf;
}

SizeSweepWorkload::SizeSweepWorkload(std::uint64_t file_size,
                                     std::uint32_t read_size,
                                     std::uint64_t seed)
    : read_size_(read_size), rng_(seed), seed_(seed) {
  PIPETTE_ASSERT(read_size >= 1 && read_size <= 4096);
  PIPETTE_ASSERT(file_size >= 3 * kBlockSize);
  files_.push_back({"sweep.dat", file_size});
  // One record per page; the last page is excluded so a record that spans
  // into the following page stays inside the file.
  slots_ = file_size / kBlockSize - 1;
}

std::uint64_t SizeSweepWorkload::slot_offset(std::uint64_t slot) const {
  PIPETTE_ASSERT(slot < slots_);
  // Stable, 8-byte aligned, never page-aligned: reads of any size at this
  // offset take the fine-grained path (page-aligned 4 KiB would be routed
  // to the block interface).
  const std::uint64_t sub = 8 * (1 + mix64(seed_ ^ slot) % 511);
  return slot * kBlockSize + sub;
}

Request SizeSweepWorkload::next() {
  return {0, slot_offset(rng_.next_below(slots_)), read_size_, false};
}

std::string SizeSweepWorkload::name() const {
  char buf[64];
  std::snprintf(buf, sizeof buf, "sweep(%uB)", read_size_);
  return buf;
}

}  // namespace pipette
