#include "workload/search.h"

#include <cmath>

#include "common/assert.h"

namespace pipette {

SearchWorkload::SearchWorkload(const SearchConfig& config)
    : config_(config), rng_(config.seed) {
  PIPETTE_ASSERT(config.terms > 0);
  PIPETTE_ASSERT(config.min_posting > 0 &&
                 config.min_posting <= config.slot_bytes);
  files_.push_back(
      {"index.dat",
       config.terms * static_cast<std::uint64_t>(config.slot_bytes)});
  term_zipf_ = std::make_unique<ScatteredZipf>(config.terms,
                                               config.term_zipf, config.seed);
}

std::uint32_t SearchWorkload::posting_bytes(std::uint64_t term) const {
  // Log-uniform between min_posting and slot_bytes, stable per term.
  const double lo = std::log2(static_cast<double>(config_.min_posting));
  const double hi = std::log2(static_cast<double>(config_.slot_bytes));
  const double u =
      static_cast<double>(mix64(config_.seed ^ ~term) >> 11) * 0x1.0p-53;
  const double bytes = std::exp2(lo + u * (hi - lo));
  return static_cast<std::uint32_t>(bytes);
}

Request SearchWorkload::next() {
  const std::uint64_t term = term_zipf_->sample(rng_);
  return {0, term * config_.slot_bytes, posting_bytes(term), false};
}

}  // namespace pipette
