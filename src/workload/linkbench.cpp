#include "workload/linkbench.h"

#include <algorithm>

#include "common/assert.h"

namespace pipette {

LinkBenchWorkload::LinkBenchWorkload(const LinkBenchConfig& config)
    : config_(config), rng_(config.seed) {
  PIPETTE_ASSERT(config.node_count > 0);
  PIPETTE_ASSERT(config.node_payload <= config.node_slot);
  files_.push_back(
      {"nodes.dat",
       config.node_count * static_cast<std::uint64_t>(config.node_slot)});
  files_.push_back({"links.dat",
                    config.node_count *
                        static_cast<std::uint64_t>(config.link_record) *
                        config.max_links_per_node});
  node_zipf_ = std::make_unique<ScatteredZipf>(config.node_count,
                                               config.zipf_alpha, config.seed);
}

GraphOp LinkBenchWorkload::draw_op() {
  // LinkBench default mix. Reads: GET_NODE 12.9, GET_LINK 0.5,
  // GET_LINKS_LIST 50.6, COUNT_LINKS 4.9. Writes: UPDATE_NODE 7.4,
  // ADD_LINK 9.0, UPDATE_LINK 8.0, DELETE_LINK 3.0. (ADD_NODE/DELETE_NODE
  // change the id space and are folded into UPDATE_NODE.)
  const double reads_only_total = 12.9 + 0.5 + 50.6 + 4.9;
  const double total = config_.read_only ? reads_only_total : 100.0 - 2.6 - 1.0;
  double x = rng_.next_double() * total;
  auto take = [&x](double share) {
    if (x < share) return true;
    x -= share;
    return false;
  };
  if (take(12.9)) return GraphOp::kGetNode;
  if (take(0.5)) return GraphOp::kGetLink;
  if (take(50.6)) return GraphOp::kGetLinkList;
  if (take(4.9)) return GraphOp::kCountLinks;
  if (take(7.4 + 2.6 + 1.0)) return GraphOp::kUpdateNode;
  if (take(9.0)) return GraphOp::kAddLink;
  if (take(8.0)) return GraphOp::kUpdateLink;
  return GraphOp::kDeleteLink;
}

std::uint64_t LinkBenchWorkload::hot_node() { return node_zipf_->sample(rng_); }

Request LinkBenchWorkload::next() {
  last_op_ = draw_op();
  const std::uint64_t node = hot_node();
  const std::uint64_t node_off =
      node * static_cast<std::uint64_t>(config_.node_slot);
  const std::uint64_t seg_bytes =
      static_cast<std::uint64_t>(config_.link_record) *
      config_.max_links_per_node;
  const std::uint64_t seg_off = node * seg_bytes;

  // List length: geometric-ish around the mean, deterministic in node id so
  // a node's degree is stable across operations.
  const std::uint32_t degree = 1 + static_cast<std::uint32_t>(
                                       mix64(node) %
                                       static_cast<std::uint64_t>(
                                           2.0 * config_.mean_list_length));
  const std::uint32_t list_links =
      std::min(degree, config_.max_links_per_node);

  switch (last_op_) {
    case GraphOp::kGetNode:
      return {0, node_off, config_.node_payload, false};
    case GraphOp::kUpdateNode:
      return {0, node_off, config_.node_payload, true};
    case GraphOp::kGetLink: {
      const std::uint32_t idx = static_cast<std::uint32_t>(
          rng_.next_below(list_links));
      return {1, seg_off + idx * config_.link_record, config_.link_record,
              false};
    }
    case GraphOp::kGetLinkList:
      return {1, seg_off, list_links * config_.link_record, false};
    case GraphOp::kCountLinks:
      // The count lives in the segment header (first record).
      return {1, seg_off, config_.link_record, false};
    case GraphOp::kAddLink: {
      // Append after the current list, staying inside the segment.
      const std::uint32_t idx =
          std::min(list_links, config_.max_links_per_node - 1);
      return {1, seg_off + idx * config_.link_record, config_.link_record,
              true};
    }
    case GraphOp::kUpdateLink: {
      const std::uint32_t idx = static_cast<std::uint32_t>(
          rng_.next_below(list_links));
      return {1, seg_off + idx * config_.link_record, config_.link_record,
              true};
    }
    case GraphOp::kDeleteLink:
      // Tombstone write over the last record.
      return {1, seg_off + (list_links - 1) * config_.link_record,
              config_.link_record, true};
  }
  PIPETTE_ASSERT(false);
  return {};
}

}  // namespace pipette
