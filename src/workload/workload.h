// Workload abstraction: a deterministic stream of file requests plus the
// set of files it operates on. Implementations: SyntheticWorkload (paper
// Table 1), RecsysWorkload (DLRM-style embedding lookups), LinkBenchWorkload
// (social-graph object store).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace pipette {

struct FileSpec {
  std::string name;
  std::uint64_t size = 0;
  /// Cap on extent length (0 = contiguous); models on-disk fragmentation.
  std::uint64_t max_extent_blocks = 0;
  /// Unallocated blocks between extents (physical discontiguity; only
  /// meaningful with max_extent_blocks > 0).
  std::uint64_t gap_blocks = 0;
};

struct Request {
  std::uint32_t file_index = 0;  // into files()
  std::uint64_t offset = 0;
  std::uint32_t len = 0;
  bool is_write = false;
};

class Workload {
 public:
  virtual ~Workload() = default;

  virtual const std::vector<FileSpec>& files() const = 0;

  /// Produce the next request. Implementations own their RNG so the stream
  /// is a pure function of the workload seed.
  virtual Request next() = 0;

  virtual std::string name() const = 0;
};

}  // namespace pipette
