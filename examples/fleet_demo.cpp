// Fleet demo: one zipfian fine-grained workload served by a 4-machine
// sharded fleet, under both partitioning schemes.
//
//   $ ./examples/fleet_demo
//
// Shows the fleet API end to end: FleetConfig -> FleetRunner -> FleetResult,
// per-shard load and cache behaviour, and why partitioning choice matters —
// the zipf head of the paper's synthetic workloads is spatially clustered at
// the start of the file, so range partitioning sends nearly all traffic to
// shard 0 while hash partitioning spreads it.
#include <cstdio>
#include <memory>

#include "fleet/fleet.h"
#include "workload/synthetic.h"

using namespace pipette;

namespace {

FleetResult run_with(PartitionScheme partition) {
  FleetConfig fleet;
  fleet.shards = 4;
  fleet.partition = partition;
  fleet.machine = default_machine(PathKind::kPipette);

  // Workload E: pure 128-byte reads, zipf(0.8) offsets — Pipette's home
  // turf. Every shard holds the file set and serves its own key range.
  FleetRunner runner(
      fleet,
      [](std::uint64_t seed) -> std::unique_ptr<Workload> {
        return std::make_unique<SyntheticWorkload>(
            table1_workload('E', Distribution::kZipf, seed));
      },
      /*workload_seed=*/42);
  return runner.run({/*requests=*/60'000, /*warmup=*/30'000});
}

void report(const char* title, const FleetResult& r) {
  std::printf("== %s ==\n", title);
  for (std::size_t s = 0; s < r.shard_results.size(); ++s) {
    const RunResult& shard = r.shard_results[s];
    std::printf(
        "  shard %zu: %7llu reqs  mean %6.2f us  p99 %7.2f us  FGRC hit "
        "%4.1f%%\n",
        s, static_cast<unsigned long long>(shard.requests),
        shard.mean_latency_us, shard.p99_latency_us,
        100.0 * shard.fgrc_hit_ratio);
  }
  std::printf(
      "  fleet: %.2f Mreq/s  merged p99 %.2f us  imbalance %.2fx "
      "(hottest shard %zu at %.1f%% FGRC hit)\n\n",
      r.requests_per_sec() / 1e6, r.p99_latency_us, r.load_imbalance,
      r.hottest_shard, 100.0 * r.hottest_shard_fgrc_hit_ratio);
}

// Replica groups: the same fleet with R=2 copies per group and a warm
// standby, losing group 0's primary for the middle half of the measured
// window. With kFailover the standby absorbs the outage — availability
// stays 1.0 at the cost of a detection penalty on the failed-over reads.
FleetResult run_failover() {
  FleetConfig fleet;
  fleet.shards = 4;
  fleet.machine = default_machine(PathKind::kPipette);
  fleet.replication.replicas = 2;
  fleet.replication.read_policy = ReadPolicy::kFailover;
  fleet.replication.shadow_read_fraction = 0.25;  // keep standbys warm
  fleet.faults.outages = {
      {/*shard=*/0, /*fail_at=*/45'000, /*recover_at=*/75'000}};
  FleetRunner runner(
      fleet,
      [](std::uint64_t seed) -> std::unique_ptr<Workload> {
        return std::make_unique<SyntheticWorkload>(
            table1_workload('E', Distribution::kZipf, seed));
      },
      /*workload_seed=*/42);
  return runner.run({/*requests=*/60'000, /*warmup=*/30'000});
}

}  // namespace

int main() {
  // Hash partitioning scatters the zipf head across the fleet.
  report("hash partitioning", run_with(PartitionScheme::kHash));

  // Range partitioning keeps key ranges contiguous — and hands the
  // clustered hot head to shard 0, which then bounds the fleet tail.
  report("range partitioning", run_with(PartitionScheme::kRange));

  const FleetResult failover = run_failover();
  std::printf("== replica groups (R=2, warm standby, primary outage) ==\n");
  std::printf(
      "  availability %.4f  failed reads %llu  failovers %llu  "
      "shadow reads %llu  stale reads %llu\n"
      "  merged p99 %.2f us across %zu machines (2 copies x 4 groups)\n\n",
      failover.availability(),
      static_cast<unsigned long long>(failover.failed_reads),
      static_cast<unsigned long long>(
          failover.metrics.value("fleet.replica_failover_reads")),
      static_cast<unsigned long long>(
          failover.metrics.value("fleet.replica_shadow_reads")),
      static_cast<unsigned long long>(
          failover.metrics.value("fleet.replica_stale_reads")),
      failover.p99_latency_us, failover.shard_results.size());

  std::printf(
      "Same seed, same per-key request sequence in every run; only the\n"
      "key->shard mapping (and the replica layout) changed. See\n"
      "bench/fleet_scaling for the shards x distribution x system matrix\n"
      "and bench/fleet_failover for the R x policy availability matrix.\n");
  return 0;
}
