// Social-graph store: a LinkBench-flavoured object server on top of the
// Pipette API, demonstrating the mixed read/write flow and the consistency
// rule (§3.1.3): a write deletes the overlapping fine-grained cache items,
// so readers never see stale bytes.
//
//   $ ./examples/social_graph [operations]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "sim/machine.h"
#include "workload/linkbench.h"

using namespace pipette;

int main(int argc, char** argv) {
  const std::uint64_t operations =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200'000;

  LinkBenchConfig lc;
  lc.node_count = 1 << 18;  // demo-sized graph
  LinkBenchWorkload workload(lc);

  MachineConfig config = realapp_machine(PathKind::kPipette);
  Machine machine(config, workload.files());
  std::vector<int> fds;
  for (const FileSpec& f : workload.files())
    fds.push_back(machine.vfs().open(f.name, machine.open_flags(true)));

  std::printf("Running %llu LinkBench-mix operations on a %u-node graph...\n",
              static_cast<unsigned long long>(operations), lc.node_count);

  std::vector<std::uint8_t> buf(8192);
  std::uint64_t reads = 0, writes = 0;
  SimDuration read_time = 0, write_time = 0;
  for (std::uint64_t i = 0; i < operations; ++i) {
    const Request r = workload.next();
    if (r.is_write) {
      std::memset(buf.data(), static_cast<int>(i & 0xff), r.len);
      write_time += machine.vfs().pwrite(fds[r.file_index], r.offset,
                                         {buf.data(), r.len});
      ++writes;
    } else {
      read_time += machine.vfs().pread(fds[r.file_index], r.offset,
                                       {buf.data(), r.len});
      ++reads;
    }
  }

  PipettePath& pipette = *machine.pipette_path();
  std::printf("\nreads : %llu (mean %.2f us)\n",
              static_cast<unsigned long long>(reads),
              to_us(read_time) / static_cast<double>(reads));
  std::printf("writes: %llu (mean %.2f us)\n",
              static_cast<unsigned long long>(writes),
              to_us(write_time) / static_cast<double>(writes));
  std::printf("FGRC hit ratio       : %.1f%%\n",
              pipette.fgrc().stats().lookups.ratio() * 100.0);
  std::printf("items invalidated by writes: %llu (consistency rule)\n",
              static_cast<unsigned long long>(
                  pipette.fgrc().stats().invalidations));
  std::printf("device bytes moved   : %.1f MiB for %.1f MiB requested\n",
              to_mib(machine.io_traffic_bytes()),
              to_mib(pipette.stats().bytes_requested));

  // Consistency spot check: update a node, then read it back fine-grained.
  const std::uint64_t node_off = 12345ull * lc.node_slot;
  std::vector<std::uint8_t> fresh(lc.node_payload, 0x5A);
  machine.vfs().pwrite(fds[0], node_off, {fresh.data(), fresh.size()});
  std::vector<std::uint8_t> check(lc.node_payload);
  machine.vfs().pread(fds[0], node_off, {check.data(), check.size()});
  std::printf("post-write readback  : %s\n",
              std::memcmp(check.data(), fresh.data(), fresh.size()) == 0
                  ? "fresh bytes (consistent)"
                  : "STALE BYTES (bug!)");
  return 0;
}
