// Quickstart: build a simulated machine with the Pipette read framework,
// open a file with O_FINE_GRAINED, and watch fine-grained reads get cheap.
//
//   $ ./examples/quickstart
//
// Walks through the public API: Machine -> Vfs -> pread, then the metrics
// every layer exposes (path latency, FGRC hits, device traffic).
#include <cstdio>
#include <vector>

#include "sim/machine.h"

using namespace pipette;

int main() {
  // 1. A machine = host (VFS, page cache, Pipette) + NVMe SSD, with one
  //    128 MiB file. default_machine() gives the paper-calibrated setup.
  MachineConfig config = default_machine(PathKind::kPipette);
  const std::vector<FileSpec> files = {{"objects.db", 128ull * kMiB}};
  Machine machine(config, files);

  // 2. Open with the paper's new flag: eligible reads take the byte path.
  const int fd = machine.vfs().open("objects.db",
                                    kOpenRead | kOpenFineGrained);

  // 3. Read the same 128-byte object three times.
  std::vector<std::uint8_t> buf(128);
  for (int i = 0; i < 3; ++i) {
    const SimDuration latency =
        machine.vfs().pread(fd, /*offset=*/4096 * 10 + 256,
                            {buf.data(), buf.size()});
    std::printf("read %d: %.2f us  (device traffic so far: %llu bytes)\n",
                i + 1, to_us(latency),
                static_cast<unsigned long long>(machine.io_traffic_bytes()));
  }

  // 4. Where did the time go? The first read missed everything and paid the
  //    flash; the rest hit the fine-grained read cache in host DRAM.
  PipettePath& pipette = *machine.pipette_path();
  std::printf("\nFGRC: %llu hits / %llu lookups, %llu promotions, %.1f KiB\n",
              static_cast<unsigned long long>(
                  pipette.fgrc().stats().lookups.hits()),
              static_cast<unsigned long long>(
                  pipette.fgrc().stats().lookups.accesses()),
              static_cast<unsigned long long>(
                  pipette.fgrc().stats().promotions),
              static_cast<double>(pipette.fgrc().memory_bytes()) / 1024.0);

  // 5. A page-aligned 4 KiB read is routed down the unchanged block path.
  std::vector<std::uint8_t> page(kBlockSize);
  machine.vfs().pread(fd, 0, {page.data(), page.size()});
  std::printf("route counts: %llu fine, %llu block\n",
              static_cast<unsigned long long>(
                  pipette.pipette_stats().fine_reads),
              static_cast<unsigned long long>(
                  pipette.pipette_stats().block_reads));
  return 0;
}
