// Trace replay: run your own request trace against any of the five systems
// and compare. Trace format, one request per line:
//
//     <offset> <len> [R|W]
//
// e.g.   4096 128 R
//        8192 4096 W
//
//   $ ./examples/trace_replay <trace-file> [block|mmio|dma|nocache|pipette]
//
// With no arguments, a small built-in demonstration trace is replayed on
// block I/O and Pipette.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "sim/machine.h"

using namespace pipette;

namespace {

struct TraceEntry {
  std::uint64_t offset;
  std::uint32_t len;
  bool write;
};

std::vector<TraceEntry> load_trace(const char* path) {
  std::vector<TraceEntry> trace;
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "cannot open trace %s\n", path);
    std::exit(1);
  }
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ss(line);
    TraceEntry e{0, 0, false};
    std::string rw = "R";
    ss >> e.offset >> e.len >> rw;
    if (e.len == 0) continue;
    e.write = (rw == "W" || rw == "w");
    trace.push_back(e);
  }
  return trace;
}

std::vector<TraceEntry> demo_trace() {
  // A hot 128 B object re-read amid scattered reads — enough to show the
  // fine-grained cache earning its keep.
  std::vector<TraceEntry> trace;
  for (int round = 0; round < 50; ++round) {
    trace.push_back({40960 + 256, 128, false});                    // hot
    trace.push_back({static_cast<std::uint64_t>(round) * 8192, 64, false});
    if (round % 10 == 9) trace.push_back({40960 + 256, 128, true});  // update
  }
  return trace;
}

PathKind parse_kind(const char* s) {
  if (std::strcmp(s, "mmio") == 0) return PathKind::kTwoBMmio;
  if (std::strcmp(s, "dma") == 0) return PathKind::kTwoBDma;
  if (std::strcmp(s, "nocache") == 0) return PathKind::kPipetteNoCache;
  if (std::strcmp(s, "pipette") == 0) return PathKind::kPipette;
  return PathKind::kBlockIo;
}

void replay(const std::vector<TraceEntry>& trace, PathKind kind) {
  std::uint64_t max_end = 1;
  for (const TraceEntry& e : trace)
    max_end = std::max(max_end, e.offset + e.len);
  const std::uint64_t file_size = (max_end + kMiB) & ~(kMiB - 1);

  MachineConfig config = default_machine(kind);
  const std::vector<FileSpec> files = {{"trace.dat", file_size}};
  Machine machine(config, files);
  const int fd = machine.vfs().open("trace.dat", machine.open_flags(true));

  std::vector<std::uint8_t> buf(64 * 1024);
  SimDuration total = 0;
  for (const TraceEntry& e : trace) {
    if (e.len > buf.size()) continue;
    if (e.write) {
      total += machine.vfs().pwrite(fd, e.offset, {buf.data(), e.len});
    } else {
      total += machine.vfs().pread(fd, e.offset, {buf.data(), e.len});
    }
  }
  std::printf("%-18s %8zu ops  %10.2f us total  %8.2f us mean  %9.1f KiB moved\n",
              to_string(kind), trace.size(), to_us(total),
              to_us(total) / static_cast<double>(trace.size()),
              static_cast<double>(machine.io_traffic_bytes()) / 1024.0);
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<TraceEntry> trace =
      argc > 1 ? load_trace(argv[1]) : demo_trace();
  if (trace.empty()) {
    std::fprintf(stderr, "empty trace\n");
    return 1;
  }
  if (argc > 2) {
    replay(trace, parse_kind(argv[2]));
  } else {
    replay(trace, PathKind::kBlockIo);
    replay(trace, PathKind::kPipette);
  }
  return 0;
}
