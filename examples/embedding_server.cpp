// Embedding server: the paper's flagship scenario. A DLRM-style inference
// tier looks up 128-byte embedding vectors from tables on the SSD; this
// example serves the same lookup stream through conventional block I/O and
// through Pipette and prints the side-by-side cost.
//
//   $ ./examples/embedding_server [lookups]
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "sim/machine.h"
#include "workload/recsys.h"

using namespace pipette;

namespace {

struct Served {
  double mean_us;
  double traffic_mib;
  double hit_ratio;
};

Served serve(PathKind kind, std::uint64_t lookups) {
  RecsysConfig rc;
  rc.total_bytes = 256ull * kMiB;  // keep the demo snappy
  RecsysWorkload workload(rc);

  MachineConfig config = realapp_machine(kind);
  config.page_cache_bytes = 128ull * kMiB;
  Machine machine(config, workload.files());
  const int fd = machine.vfs().open(workload.files()[0].name,
                                    machine.open_flags(false));

  std::vector<std::uint8_t> vec(rc.vector_size);
  // Warm both tiers with half the stream, then measure.
  for (std::uint64_t i = 0; i < lookups; ++i) {
    const Request r = workload.next();
    machine.vfs().pread(fd, r.offset, {vec.data(), vec.size()});
  }
  const SimTime t0 = machine.sim().now();
  const std::uint64_t traffic0 = machine.io_traffic_bytes();
  for (std::uint64_t i = 0; i < lookups; ++i) {
    const Request r = workload.next();
    machine.vfs().pread(fd, r.offset, {vec.data(), vec.size()});
  }
  Served s;
  s.mean_us = static_cast<double>(machine.sim().now() - t0) / 1e3 /
              static_cast<double>(lookups);
  s.traffic_mib = to_mib(machine.io_traffic_bytes() - traffic0);
  if (PipettePath* p = machine.pipette_path()) {
    s.hit_ratio = p->fgrc().stats().lookups.ratio();
  } else {
    s.hit_ratio = machine.page_cache()->stats().lookups.ratio();
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t lookups =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 500'000;

  std::printf("Serving %llu embedding lookups (128 B vectors)...\n\n",
              static_cast<unsigned long long>(lookups));
  std::printf("%-12s %14s %16s %12s\n", "system", "mean us/lookup",
              "device MiB moved", "cache hit %");
  for (PathKind kind : {PathKind::kBlockIo, PathKind::kPipette}) {
    const Served s = serve(kind, lookups);
    std::printf("%-12s %14.2f %16.1f %12.1f\n", to_string(kind), s.mean_us,
                s.traffic_mib, s.hit_ratio * 100.0);
  }
  std::printf(
      "\nThe block path drags a 4 KiB page (plus read-ahead) through the\n"
      "kernel for every 128 B vector; Pipette moves just the vector and\n"
      "caches it at byte granularity.\n");
  return 0;
}
