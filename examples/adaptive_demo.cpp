// Adaptive caching demo: watch Pipette's promotion threshold react to the
// workload's reusability (paper §3.2.2). Phase 1 hammers a hot set of
// objects (high reuse -> threshold drops to the floor, everything hot gets
// cached); phase 2 switches to a scan of never-repeated objects (reuse
// collapses -> threshold climbs, the scan stages through TempBuf and the
// hot set survives in the cache); phase 3 returns to the hot set, which is
// still resident.
//
//   $ ./examples/adaptive_demo
#include <cstdio>
#include <vector>

#include "common/zipf.h"
#include "sim/machine.h"

using namespace pipette;

namespace {

void report(const char* phase, PipettePath& pipette, std::uint64_t hits0,
            std::uint64_t lookups0) {
  const auto& st = pipette.fgrc().stats();
  const double hit =
      st.lookups.accesses() == lookups0
          ? 0.0
          : 100.0 * static_cast<double>(st.lookups.hits() - hits0) /
                static_cast<double>(st.lookups.accesses() - lookups0);
  std::printf("%-22s threshold=%u  phase hit=%5.1f%%  promoted=%llu "
              "tempbuf=%llu\n",
              phase, pipette.fgrc().adaptive().threshold(), hit,
              static_cast<unsigned long long>(st.promotions),
              static_cast<unsigned long long>(st.tempbuf_fills));
}

}  // namespace

int main() {
  MachineConfig config = default_machine(PathKind::kPipette);
  config.pipette.fgrc.adaptive.adjust_period = 2048;
  Machine machine(config, {{{"objects.db", 512ull * kMiB}}});
  const int fd =
      machine.vfs().open("objects.db", kOpenRead | kOpenFineGrained);
  PipettePath& pipette = *machine.pipette_path();

  Rng rng(1);
  ZipfGenerator hot(20'000, 1.0);  // 20K hot 128B objects
  std::vector<std::uint8_t> buf(128);
  std::uint64_t scan_pos = 128ull * kMiB;

  auto run_phase = [&](const char* name, bool scan, int accesses) {
    const auto hits0 = pipette.fgrc().stats().lookups.hits();
    const auto lookups0 = pipette.fgrc().stats().lookups.accesses();
    for (int i = 0; i < accesses; ++i) {
      std::uint64_t offset;
      if (scan) {
        offset = scan_pos;
        scan_pos += 128;  // never repeats
      } else {
        offset = hot.sample(rng) * 128;
      }
      machine.vfs().pread(fd, offset, {buf.data(), buf.size()});
    }
    report(name, pipette, hits0, lookups0);
  };

  std::printf("initial threshold=%u\n\n",
              pipette.fgrc().adaptive().threshold());
  run_phase("phase 1: hot set", false, 60'000);
  run_phase("phase 2: cold scan", true, 60'000);
  run_phase("phase 3: hot again", false, 60'000);

  std::printf(
      "\nThe scan raised the threshold (low reuse ratio) and stayed out of\n"
      "the cache via TempBuf; the hot set survived it and phase 3 resumed\n"
      "hitting immediately.\n");
  return 0;
}
